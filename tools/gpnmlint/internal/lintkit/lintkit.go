// Package lintkit is the minimal analysis framework gpnmlint runs on:
// the same Analyzer/Pass/Diagnostic shape as golang.org/x/tools
// go/analysis, reimplemented over the standard library only (this
// repository builds offline; see the module comment in go.mod).
//
// Differences from go/analysis, all deliberate simplifications:
//
//   - Packages load through `go list -export -deps -json` plus a
//     go/types check of each target package's source against the build
//     cache's export data (load.go), instead of go/packages.
//   - Analyzers run serially per package; cross-package state flows
//     through Pass.ExportFact and Analyzer.Finish instead of the
//     go/analysis fact serialisation machinery.
//   - Suppression is a source comment, `//lint:allow <pass> <reason>`,
//     checked here in the runner, so every analyzer gets it for free
//     and the reason is mandatory.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// `//lint:allow <name> <reason>` suppressions.
	Name string
	// Aliases are extra names accepted in allow directives (nopanic
	// answers to `//lint:allow panic ...`, the spelling the annotated
	// call sites read most naturally with).
	Aliases []string
	// Doc is the one-paragraph description `gpnmlint -help` prints.
	Doc string
	// Run reports diagnostics for one package through pass.Report.
	Run func(pass *Pass) error
	// Finish, when non-nil, runs once after Run has seen every package —
	// the cross-package step. It sees every fact the pass exported and
	// reports program-wide diagnostics (metricname's kind-collision
	// check lives here).
	Finish func(f *Finish) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
	facts  *[]Fact
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Fact is one unit of cross-package state: something a per-package Run
// wants its Finish step to see alongside every other package's.
type Fact struct {
	Pass  string
	Pos   token.Position
	Key   string
	Value string
}

// Finish is the cross-package step's view: the facts this analyzer
// exported from every package, and a reporter for program-wide
// diagnostics.
type Finish struct {
	Facts  []Fact
	report func(Diagnostic)
}

// Report files one program-wide diagnostic (Finish-step diagnostics are
// suppressible at pos like any other).
func (f *Finish) Report(pos token.Position, format string, args ...interface{}) {
	f.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Reportf files one diagnostic at node's position.
func (p *Pass) Reportf(node ast.Node, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(node.Pos()),
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExportFact records cross-package state for the analyzer's Finish step.
func (p *Pass) ExportFact(node ast.Node, key, value string) {
	*p.facts = append(*p.facts, Fact{
		Pass:  p.Analyzer.Name,
		Pos:   p.Pkg.Fset.Position(node.Pos()),
		Key:   key,
		Value: value,
	})
}

// PathHasSuffix reports whether an import path ends with the given
// slash-separated suffix on a path-element boundary: "internal/hub"
// matches "uagpnm/internal/hub" and "fix/internal/hub" but not
// "uagpnm/internal/bighub". Analyzers scope themselves by path suffix
// so the analysistest fixtures (module "fix") exercise the same code
// the real tree does.
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// allowRe matches one suppression directive. The reason is mandatory:
// an allow without a why is a finding in its own right.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)(?:\s+(.*))?$`)

// allowSet records, per file line, which pass names are suppressed.
type allowSet map[int]map[string]bool

// allowsFor scans a file's comments into the line → suppressed-passes
// map. A directive suppresses the line it shares (trailing comment) or,
// when it stands alone, the next source line below it — consecutive
// directive-only lines stack onto the same target line. Malformed
// directives (no reason) are reported as diagnostics themselves.
func allowsFor(pkg *Package, file *ast.File, report func(Diagnostic)) allowSet {
	set := allowSet{}
	fset := pkg.Fset
	// Lines that hold nothing but a directive comment: their directive
	// applies downward.
	standalone := map[int][]string{} // line → pass names
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				if strings.HasPrefix(c.Text, "//lint:allow") {
					report(Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Pass:    "lint",
						Message: "malformed //lint:allow directive (want `//lint:allow <pass> <reason>`)",
					})
				}
				continue
			}
			if strings.TrimSpace(m[2]) == "" {
				report(Diagnostic{
					Pos:     fset.Position(c.Pos()),
					Pass:    "lint",
					Message: fmt.Sprintf("//lint:allow %s needs a reason", m[1]),
				})
				continue
			}
			pos := fset.Position(c.Pos())
			if onlyCommentOnLine(fset, file, c) {
				standalone[pos.Line] = append(standalone[pos.Line], m[1])
			} else {
				addAllow(set, pos.Line, m[1])
			}
		}
	}
	// Stack runs of standalone directive lines onto the first line after
	// the run.
	lines := make([]int, 0, len(standalone))
	for l := range standalone {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	for i := len(lines) - 1; i >= 0; i-- {
		l := lines[i]
		target := l + 1
		for len(standalone[target]) > 0 {
			target++
		}
		for _, name := range standalone[l] {
			addAllow(set, target, name)
		}
	}
	return set
}

func addAllow(set allowSet, line int, name string) {
	if set[line] == nil {
		set[line] = map[string]bool{}
	}
	set[line][name] = true
}

// onlyCommentOnLine reports whether c is the only thing on its source
// line (i.e. a standalone directive rather than a trailing one).
func onlyCommentOnLine(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	cl := fset.Position(c.Pos()).Line
	only := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		if _, ok := n.(*ast.File); ok {
			return true
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if start <= cl && cl <= end {
			// A node spanning the comment's line: fine when it is a
			// multi-line construct whose tokens are elsewhere; fatal when
			// a token starts or ends exactly on the line. Checking leaf
			// nodes only keeps this cheap and right in practice.
			switch n.(type) {
			case *ast.Ident, *ast.BasicLit, *ast.ReturnStmt, *ast.BranchStmt:
				only = false
				return false
			}
		}
		return start <= cl // descend only into nodes that could reach the line
	})
	return only
}

// names returns every name a directive may use for a.
func (a *Analyzer) names() []string {
	return append([]string{a.Name}, a.Aliases...)
}

// allowed reports whether d is suppressed at its line.
func (a *Analyzer) allowed(set allowSet, line int) bool {
	m := set[line]
	if m == nil {
		return false
	}
	for _, n := range a.names() {
		if m[n] {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package (then the Finish
// steps) and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	var facts []Fact
	keep := func(d Diagnostic) { out = append(out, d) }

	// Per-file suppression tables, built once per package.
	type fileAllows struct {
		pkg *Package
		set allowSet
	}
	allowsByFile := map[string]fileAllows{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			allowsByFile[name] = fileAllows{pkg, allowsFor(pkg, f, keep)}
		}
	}

	filtered := func(a *Analyzer) func(Diagnostic) {
		return func(d Diagnostic) {
			d.Pass = a.Name
			if fa, ok := allowsByFile[d.Pos.Filename]; ok && a.allowed(fa.set, d.Pos.Line) {
				return
			}
			out = append(out, d)
		}
	}

	for _, a := range analyzers {
		report := filtered(a)
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: report, facts: &facts}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		if a.Finish != nil {
			var own []Fact
			for _, f := range facts {
				if f.Pass == a.Name {
					own = append(own, f)
				}
			}
			if err := a.Finish(&Finish{Facts: own, report: report}); err != nil {
				return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out, nil
}
