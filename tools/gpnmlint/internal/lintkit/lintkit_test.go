package lintkit

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestAllowDirectives(t *testing.T) {
	src := `package p

func f() {
	//lint:allow nopanic construction invariant
	panic("a")
	panic("b") //lint:allow nopanic caller validated
	//lint:allow nopanic
	panic("c")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "fixture", Fset: fset}
	var diags []Diagnostic
	set := allowsFor(pkg, f, func(d Diagnostic) { diags = append(diags, d) })

	// The reason-less directive on line 7 must be reported and must not
	// suppress anything.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("want one needs-a-reason diagnostic, got %v", diags)
	}
	a := &Analyzer{Name: "nopanic", Aliases: []string{"panic"}}
	if !a.allowed(set, 5) {
		t.Errorf("standalone directive must suppress line 5")
	}
	if !a.allowed(set, 6) {
		t.Errorf("trailing directive must suppress line 6")
	}
	if a.allowed(set, 8) {
		t.Errorf("reason-less directive must not suppress line 8")
	}
	if a.allowed(set, 4) {
		t.Errorf("directive must not suppress its own line")
	}
}

func TestAllowAlias(t *testing.T) {
	src := `package p

func f() {
	//lint:allow panic invariant documented above
	panic("a")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "fixture", Fset: fset}
	set := allowsFor(pkg, f, func(Diagnostic) {})
	a := &Analyzer{Name: "nopanic", Aliases: []string{"panic"}}
	if !a.allowed(set, 5) {
		t.Errorf("alias directive must suppress line 5")
	}
	other := &Analyzer{Name: "lockguard"}
	if other.allowed(set, 5) {
		t.Errorf("directive for another pass must not suppress lockguard")
	}
}

func TestStackedDirectives(t *testing.T) {
	src := `package p

func f() {
	//lint:allow nopanic invariant one
	//lint:allow lockguard invariant two
	panic("a")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "fixture", Fset: fset}
	set := allowsFor(pkg, f, func(Diagnostic) {})
	for _, name := range []string{"nopanic", "lockguard"} {
		a := &Analyzer{Name: name}
		if !a.allowed(set, 6) {
			t.Errorf("stacked directives must both suppress line 6 (%s missing)", name)
		}
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"uagpnm/internal/hub", "internal/hub", true},
		{"fix/internal/hub", "internal/hub", true},
		{"internal/hub", "internal/hub", true},
		{"uagpnm/internal/bighub", "internal/hub", false},
		{"uagpnm/internal/hubx", "internal/hub", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}
