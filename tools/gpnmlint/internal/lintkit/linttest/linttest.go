// Package linttest is the fixture harness for lintkit analyzers, shaped
// like golang.org/x/tools' analysistest: fixtures live in a testdata
// module, and every line expecting a diagnostic carries a
// `// want "regexp"` comment. Run loads the fixture packages, runs the
// analyzers, and fails the test on any unmatched diagnostic or
// unsatisfied expectation.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

// expectation is one `// want` clause waiting for a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the packages matched by patterns (relative to dir, the
// fixture module root) and checks analyzers' diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir string, analyzers []*lintkit.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lintkit.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", patterns, dir)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	diags, err := lintkit.Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unsatisfied expectation matching d, if any.
func claim(wants []*expectation, d lintkit.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants extracts the `// want "re" ["re" ...]` expectations from
// one file. Each quoted (or backquoted) pattern is a separate expected
// diagnostic on the comment's line.
func collectWants(t *testing.T, pkg *lintkit.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			pats, err := splitPatterns(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// splitPatterns parses a want clause's sequence of Go string literals.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want pattern must be a quoted string, got %q", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out, nil
}
