package lintkit

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method object a call invokes, or nil
// for calls through non-constant function values, builtins, and
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named builtin
// (e.g. "panic"), resolving through Uses so a local function shadowing
// the builtin does not match.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// FuncPkgSuffix reports whether fn belongs to a package whose import
// path ends in suffix (see PathHasSuffix).
func FuncPkgSuffix(fn *types.Func, suffix string) bool {
	return fn != nil && fn.Pkg() != nil && PathHasSuffix(fn.Pkg().Path(), suffix)
}

// NamedOf unwraps pointers and aliases down to the *types.Named under
// t, or nil.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// NamedIs reports whether t (possibly behind a pointer) is the named
// type `name` declared in a package whose path ends in pkgSuffix.
func NamedIs(t types.Type, pkgSuffix, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// ReceiverType returns the type of the receiver expression of a method
// call, or nil when the call is not a selector-based method call.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}
