package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go command, parses and
// type-checks every target (non-dependency, non-stdlib) package, and
// returns them in listing order. Dependencies are imported from the
// compiler export data `go list -export` leaves in the build cache, so
// loading works offline and never rebuilds the world in-process.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPkg
	exportFor := map[string]string{} // import path → export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
