// Command gpnmlint runs the project's analysis passes over Go packages:
// faultseam, nopanic, metricname, lockguard and defensivecopy — the
// hand-maintained invariants of the sharded engine (failover seams,
// error-model discipline, Prometheus naming, lock/RPC interleavings,
// accessor aliasing) as mechanical checks.
//
// Usage:
//
//	gpnmlint [-version] [packages]
//
// With no package patterns it checks ./... in the current directory.
// Exit status is 1 when any diagnostic is reported. Intentional
// exceptions are annotated in source as `//lint:allow <pass> <reason>`
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"uagpnm/internal/version"
	"uagpnm/tools/gpnmlint/internal/lintkit"
	"uagpnm/tools/gpnmlint/passes/defensivecopy"
	"uagpnm/tools/gpnmlint/passes/faultseam"
	"uagpnm/tools/gpnmlint/passes/lockguard"
	"uagpnm/tools/gpnmlint/passes/metricname"
	"uagpnm/tools/gpnmlint/passes/nopanic"
)

var analyzers = []*lintkit.Analyzer{
	faultseam.Analyzer,
	nopanic.Analyzer,
	metricname.Analyzer,
	lockguard.Analyzer,
	defensivecopy.Analyzer,
}

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gpnmlint [-version] [packages]\n\npasses:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("gpnmlint"))
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnmlint:", err)
		os.Exit(2)
	}
	pkgs, err := lintkit.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnmlint:", err)
		os.Exit(2)
	}
	diags, err := lintkit.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnmlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpnmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
