// Package b registers a metric name package a already registered as a
// Counter — the cross-package collision metricname's finish step
// reports at both sites.
package b

import "fix/internal/obs"

func Record(reg *obs.Registry) {
	reg.Gauge("gpnm_dup_total").Set(2) // want `multiple instrument types`
}
