// Package a is the metricname fixture: name shape, constancy, label
// keys, and one half of a cross-package kind collision (see sibling
// package b).
package a

import "fix/internal/obs"

func Record(reg *obs.Registry, dyn string) {
	reg.Counter("gpnm_good_total", "endpoint", "/ops").Inc()        // silent
	reg.Counter("gpnm_" + "concat_total").Inc()                     // silent: still a constant
	reg.Counter("rows_total").Inc()                                 // want `must match`
	reg.Gauge("gpnm_Bad_Gauge").Set(1)                              // want `must match`
	reg.Counter(dyn).Inc()                                          // want `constant string`
	reg.Histogram("gpnm_lat_seconds", "End-Point", "/x").Observe(1) // want `label key "End-Point"`
	reg.Counter("gpnm_dup_total").Inc()                             // want `multiple instrument types`

	//lint:allow metricname legacy name exported before the prefix convention
	reg.Gauge("legacy_depth").Set(0)
}
