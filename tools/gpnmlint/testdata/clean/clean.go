// Package clean is outside nopanic's serving-package scope: its panic
// must stay silent.
package clean

func Explode() { panic("fine here") }
