// Package partition is the faultseam fixture: every way a shard.Shard
// error may legally flow into the failover seam, and every way it may
// illegally escape it.
package partition

import "fix/internal/shard"

type shardFault struct {
	idx int
	err error
}

func (f *shardFault) Error() string { return f.err.Error() }

type Engine struct {
	shards []shard.Shard
}

func (e *Engine) shardFail(i int, err error) { panic(&shardFault{i, err}) }

func (e *Engine) poison(err error) {}

// Routed through shardFail: silent.
func (e *Engine) buildAll() {
	for i, sh := range e.shards {
		if err := sh.Build(i); err != nil {
			e.shardFail(i, err)
		}
	}
}

// Direct nil probe (the recovery controller's liveness idiom): silent.
func (e *Engine) alive(i int) bool { return e.shards[i].Ping() == nil }

// Routed through a shardFault literal: silent.
func (e *Engine) direct(i int) {
	if err := e.shards[i].Build(i); err != nil {
		panic(&shardFault{i, err})
	}
}

// Routed through poison: silent.
func (e *Engine) boundary(i int) {
	if err := e.shards[i].Ping(); err != nil {
		e.poison(err)
	}
}

// Multi-value call with the error routed: silent.
func (e *Engine) rows(i int) int {
	n, err := e.shards[i].Rows(4)
	if err != nil {
		e.shardFail(i, err)
	}
	return n
}

// Discards: diagnostics.
func (e *Engine) leak(i int) {
	_ = e.shards[i].Close() // want `shard error discarded`
	e.shards[i].Close()     // want `shard call result discarded`
}

// Raw returns bypass recovery: diagnostics.
func (e *Engine) rawReturn(i int) error {
	if err := e.shards[i].Build(i); err != nil { // want `returned raw`
		return err
	}
	return nil
}

func (e *Engine) rawReturnDirect(i int) error {
	return e.shards[i].Close() // want `returned raw`
}

// Bound but neither routed nor returned: diagnostic.
func (e *Engine) swallow(i int) {
	if err := e.shards[i].Ping(); err != nil { // want `not routed into the failover seam`
		println("shard down")
	}
}

// Annotated best-effort discard: silent.
func (e *Engine) quarantine(i int) {
	//lint:allow faultseam best-effort close of a quarantined slot
	_ = e.shards[i].Close()
}

// Concrete *shard.Local receiver: exempt (in-process, no lost worker).
func rebuildLocal(l *shard.Local) {
	_ = l.Build(0)
}
