// Package hub is the nopanic fixture: process-killing calls in a
// serving package, with and without annotations.
package hub

import (
	"log"
	"os"
)

func Serve(bad bool) error {
	if bad {
		panic("boom") // want `panic in serving package`
	}
	log.Fatalf("no: %v", bad) // want `log.Fatalf exits the process`
	os.Exit(1)                // want `os.Exit in serving package`
	return nil
}

// Annotated invariant (standalone directive): silent.
func mustAligned(n int) {
	if n%2 != 0 {
		//lint:allow panic alignment is a construction invariant, validated at build time
		panic("unaligned")
	}
}

// Trailing annotation, using the pass's primary name: silent.
func mustSmall(n int) {
	if n > 1024 {
		panic("too big") //lint:allow nopanic size checked by the only caller
	}
}
