// Package shard stubs the real shard package's surface: the Shard
// interface faultseam guards, the RPC client and interface methods
// lockguard treats as blocking, and a concrete Local faultseam exempts.
package shard

type Shard interface {
	Remote() bool
	Ping() error
	Build(index int) error
	Rows(n int) (int, error)
	Close() error
}

type RPC struct{}

func (r *RPC) Call(path string) error { return nil }

type Local struct{}

func (l *Local) Remote() bool          { return false }
func (l *Local) Ping() error           { return nil }
func (l *Local) Build(index int) error { return nil }
func (l *Local) Rows(n int) (int, error) {
	return n, nil
}
func (l *Local) Close() error { return nil }
