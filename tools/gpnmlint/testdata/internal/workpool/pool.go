// Package workpool stubs the worker-pool fan lockguard treats as a
// blocking call.
package workpool

func ForEach(n, workers int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
