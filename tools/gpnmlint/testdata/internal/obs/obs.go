// Package obs stubs the metrics registry surface metricname checks.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

func (r *Registry) Counter(name string, labels ...string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string, labels ...string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string, labels ...string) *Histogram { return &Histogram{} }

var Default = &Registry{}
