// Package locks is the lockguard fixture: blocking operations with a
// mutex held (diagnostics) against the release-first, branch-exit,
// non-blocking-select and closure patterns the engine actually uses
// (silent).
package locks

import (
	"sync"
	"time"

	"fix/internal/shard"
	"fix/internal/workpool"
)

type Server struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	rpc *shard.RPC
	sh  shard.Shard
	ch  chan int
}

func (s *Server) bad1() {
	s.mu.Lock()
	<-s.ch // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

func (s *Server) bad2() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	workpool.ForEach(4, 2, func(i int) {}) // want `worker-pool fan ForEach while holding s\.rw`
}

func (s *Server) bad3() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rpc.Call("/rows") // want `shard RPC Call while holding s\.mu`
}

func (s *Server) bad4() {
	s.mu.Lock()
	if err := s.sh.Ping(); err != nil { // want `shard\.Shard\.Ping .* while holding s\.mu`
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *Server) bad5(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func (s *Server) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding s\.mu`
	case v := <-s.ch:
		_ = v
	}
}

func (s *Server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// Release before blocking: silent.
func (s *Server) good1() {
	s.mu.Lock()
	ch := s.ch
	s.mu.Unlock()
	<-ch
}

// Early-exit branch releases then blocks; the fallthrough keeps the
// lock but never blocks: silent.
func (s *Server) good2(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		<-s.ch
		return
	}
	s.mu.Unlock()
}

// Non-blocking poll: silent.
func (s *Server) good3() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// The closure blocks on the pool goroutine, not under this function's
// lock; its body is scanned separately with an empty held set: silent.
func (s *Server) good4() {
	s.mu.Lock()
	f := func() { <-s.ch }
	s.mu.Unlock()
	f()
}

// The op-streamer's bounded exchange: a send-or-receive select loop
// trading work over a backlogged channel. Run unlocked (as the staging
// loop does), the peer can always make progress: silent.
func (s *Server) goodExchange(v int) {
	for {
		select {
		case s.ch <- v:
			return
		case got := <-s.ch:
			_ = got
		}
	}
}

// The same exchange under a held mutex can deadlock against a consumer
// that needs the lock to drain: diagnostic.
func (s *Server) badExchange(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding s\.mu`
	case s.ch <- v:
	case got := <-s.ch:
		_ = got
	}
}

// Annotated intentional hold: silent.
func (s *Server) allowed() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	//lint:allow lockguard read-locked CPU-only fan, ordered against rebuilds
	workpool.ForEach(2, 2, func(i int) {})
}
