// Package accessors is the defensivecopy fixture: exported methods
// leaking unexported map/slice fields (diagnostics) against copying,
// unexported and annotated accessors (silent).
package accessors

type Graph struct {
	out   map[int][]int
	nodes []int
	Name  string
}

func (g *Graph) Out() map[int][]int { return g.out } // want `returns internal map field "out"`

func (g *Graph) Nodes() []int {
	return g.nodes // want `returns internal slice field "nodes"`
}

// Copying accessor: silent.
func (g *Graph) NodesCopy() []int {
	out := make([]int, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Unexported method: package-internal surface, silent.
func (g *Graph) peek() []int { return g.nodes }

// Unexported receiver type: silent.
type builder struct{ rows []int }

func (b *builder) Rows() []int { return b.rows }

// Exported field: already part of the public surface, silent.
type Open struct{ Rows []int }

func (o *Open) Get() []int { return o.Rows }

// Annotated documented view: silent.
type Adj struct{ in map[int][]int }

func (a *Adj) In() map[int][]int {
	//lint:allow defensivecopy documented read-only view; copying would dominate the hot path
	return a.in
}
