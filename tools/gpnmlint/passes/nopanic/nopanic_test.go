package nopanic_test

import (
	"path/filepath"
	"testing"

	"uagpnm/tools/gpnmlint/internal/lintkit"
	"uagpnm/tools/gpnmlint/internal/lintkit/linttest"
	"uagpnm/tools/gpnmlint/passes/nopanic"
)

func TestNopanic(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	// ./clean is out of scope: its panic must stay silent.
	linttest.Run(t, td, []*lintkit.Analyzer{nopanic.Analyzer}, "./internal/hub", "./clean")
}
