// Package nopanic forbids panic/log.Fatal*/os.Exit in the serving and
// RPC packages. Those paths converted to returned errors in PR 4 and
// unwind shard faults as recoverable panics only through the dedicated
// failover seam; any other process-killing call in a request path takes
// the whole node down for one bad input. Genuine unreachable-invariant
// panics are annotated `//lint:allow panic <reason>`.
package nopanic

import (
	"go/ast"
	"strings"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

// scope is the set of serving/RPC packages (matched by import-path
// suffix) where process-killing calls are forbidden.
var scope = []string{
	"internal/shard",
	"internal/hub",
	"internal/api",
	"internal/partition",
	"internal/srvutil",
}

var Analyzer = &lintkit.Analyzer{
	Name:    "nopanic",
	Aliases: []string{"panic"},
	Doc: "forbid panic, log.Fatal* and os.Exit in serving/RPC packages " +
		"(internal/{shard,hub,api,partition,srvutil}); annotate genuine " +
		"invariants with //lint:allow panic <reason>",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	inScope := false
	for _, s := range scope {
		if lintkit.PathHasSuffix(pass.Pkg.ImportPath, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lintkit.IsBuiltin(pass.Pkg.Info, call, "panic") {
				pass.Reportf(call, "panic in serving package %s; return an error or annotate with //lint:allow panic <reason>", pass.Pkg.ImportPath)
				return true
			}
			fn := lintkit.Callee(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
				pass.Reportf(call, "log.%s exits the process; serving packages must return errors", fn.Name())
			case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
				pass.Reportf(call, "os.Exit in serving package %s; return an error instead", pass.Pkg.ImportPath)
			}
			return true
		})
	}
	return nil
}
