// Package faultseam enforces the partition layer's failover seam:
// inside internal/partition, an error from a direct shard.Shard
// interface call must either be probed against nil on the spot (the
// recovery controller's liveness idiom) or flow into the fault plumbing
// — a shardFail/poison call or a shardFault literal — which unwinds the
// protected phase as a repairable *shardFault. Discarding the error
// swallows a shard loss; returning it raw bypasses recovery and hands
// callers an error the engine was built to absorb.
package faultseam

import (
	"go/ast"
	"go/token"
	"go/types"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

// routers are the fault-plumbing entry points an error may flow into.
var routers = map[string]bool{"shardFail": true, "poison": true}

var Analyzer = &lintkit.Analyzer{
	Name: "faultseam",
	Doc: "in internal/partition, errors from shard.Shard interface calls must " +
		"be nil-probed directly or routed into the failover seam " +
		"(shardFail/poison/shardFault); discards and raw returns are diagnostics",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathHasSuffix(pass.Pkg.ImportPath, "internal/partition") {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isShardIfaceErrCall(info, call) {
			return true
		}
		classify(pass, fd, call, stack)
		return true
	})
}

// isShardIfaceErrCall reports whether call is a method call through the
// shard.Shard interface whose last result is an error. Concrete shard
// types (*shard.Local fast paths) are exempt: their errors are
// in-process and don't represent a lost worker.
func isShardIfaceErrCall(info *types.Info, call *ast.CallExpr) bool {
	if !lintkit.NamedIs(lintkit.ReceiverType(info, call), "internal/shard", "Shard") {
		return false
	}
	fn := lintkit.Callee(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// classify inspects the syntactic context of one shard call and reports
// when its error escapes the failover seam.
func classify(pass *lintkit.Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	parent := parentOf(stack)
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		// sh.Ping() != nil — the direct liveness probe.
		if (p.Op == token.NEQ || p.Op == token.EQL) && (isNil(pass, p.X) || isNil(pass, p.Y)) {
			return
		}
	case *ast.AssignStmt:
		errObj := boundErrVar(pass.Pkg.Info, p, call)
		if errObj == nil {
			pass.Reportf(call, "shard error discarded (bound to _); route it through shardFail/poison or annotate")
			return
		}
		if routedInFunc(pass.Pkg.Info, fd.Body, errObj) {
			return
		}
		if returnedInFunc(pass.Pkg.Info, fd.Body, errObj) {
			pass.Reportf(call, "shard error %q returned raw; convert it to a *shardFault (shardFail) inside the failover region", errObj.Name())
			return
		}
		pass.Reportf(call, "shard error %q is not routed into the failover seam (shardFail/poison/shardFault literal)", errObj.Name())
		return
	case *ast.ExprStmt:
		pass.Reportf(call, "shard call result discarded; route the error through shardFail/poison or annotate")
		return
	case *ast.ReturnStmt:
		pass.Reportf(call, "shard error returned raw; convert it to a *shardFault (shardFail) inside the failover region")
		return
	}
	// Any other context (argument to another call, etc.) hides the
	// error from the seam.
	pass.Reportf(call, "shard call in a context that hides its error from the failover seam")
}

// parentOf returns the nearest non-paren ancestor of the node on top of
// the stack.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

func isNil(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// boundErrVar returns the variable the call's error result is bound to
// in assign, or nil when it is bound to the blank identifier.
func boundErrVar(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) *types.Var {
	var lhs ast.Expr
	if len(assign.Rhs) == 1 {
		// d, err := call — the error is the call's last result.
		lhs = assign.Lhs[len(assign.Lhs)-1]
	} else {
		for i, r := range assign.Rhs {
			if ast.Unparen(r) == call && i < len(assign.Lhs) {
				lhs = assign.Lhs[i]
			}
		}
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// routedInFunc reports whether obj is used as an argument to a fault
// router (shardFail/poison) or inside a shardFault composite literal
// anywhere in body.
func routedInFunc(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if routers[calleeName(x)] && usesVar(info, x.Args, obj) {
				found = true
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			if ok && lintkit.NamedIs(tv.Type, "internal/partition", "shardFault") && usesVar(info, x.Elts, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnedInFunc reports whether obj appears inside any return
// statement of body.
func returnedInFunc(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if usesVar(info, []ast.Expr{r}, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func usesVar(info *types.Info, exprs []ast.Expr, obj *types.Var) bool {
	for _, e := range exprs {
		used := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if used {
			return true
		}
	}
	return false
}
