package faultseam_test

import (
	"path/filepath"
	"testing"

	"uagpnm/tools/gpnmlint/internal/lintkit"
	"uagpnm/tools/gpnmlint/internal/lintkit/linttest"
	"uagpnm/tools/gpnmlint/passes/faultseam"
)

func TestFaultseam(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, td, []*lintkit.Analyzer{faultseam.Analyzer}, "./internal/partition")
}
