// Package defensivecopy flags exported methods on exported types that
// return an internal map or slice field uncopied. Callers that mutate
// the returned value then alias the receiver's private state — the
// PR 2 Session.SQuery/Matches bug, mechanised. Documented read-only
// accessors opt out with //lint:allow defensivecopy <reason>.
package defensivecopy

import (
	"go/ast"
	"go/types"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "defensivecopy",
	Doc: "exported methods on exported types must not return unexported " +
		"map/slice fields without copying (callers would alias internal state)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if pass.Pkg.Types.Name() == "main" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverVar(info, fd)
			if recv == nil || !exportedReceiver(recv) {
				continue
			}
			checkBody(pass, fd, recv)
		}
	}
	return nil
}

// receiverVar resolves the method's receiver variable, or nil for
// unnamed/blank receivers (which cannot leak fields anyway).
func receiverVar(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// exportedReceiver reports whether the receiver's named type is
// exported (unexported types can't be reached from outside the package,
// so aliasing their fields is the package's own business).
func exportedReceiver(recv *types.Var) bool {
	n := lintkit.NamedOf(recv.Type())
	return n != nil && n.Obj().Exported()
}

func checkBody(pass *lintkit.Pass, fd *ast.FuncDecl, recv *types.Var) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures aren't the exported surface
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			field, ok := leakedField(info, res, recv)
			if !ok {
				continue
			}
			kind := "slice"
			if _, isMap := field.Type().Underlying().(*types.Map); isMap {
				kind = "map"
			}
			pass.Reportf(res, "%s.%s returns internal %s field %q without copying; callers can mutate receiver state",
				lintkit.NamedOf(recv.Type()).Obj().Name(), fd.Name.Name, kind, field.Name())
		}
		return true
	})
}

// leakedField reports whether expr is a selector chain rooted at the
// receiver ending in an unexported field of map or slice type.
func leakedField(info *types.Info, expr ast.Expr, recv *types.Var) (*types.Var, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Exported() {
		return nil, false
	}
	switch field.Type().Underlying().(type) {
	case *types.Map, *types.Slice:
	default:
		return nil, false
	}
	if !rootedAtReceiver(info, sel.X, recv) {
		return nil, false
	}
	return field, true
}

// rootedAtReceiver walks a chain of selectors/parens down to an
// identifier and reports whether it is the receiver variable.
func rootedAtReceiver(info *types.Info, e ast.Expr, recv *types.Var) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x] == recv
		case *ast.SelectorExpr:
			e = x.X
		default:
			return false
		}
	}
}
