package defensivecopy_test

import (
	"path/filepath"
	"testing"

	"uagpnm/tools/gpnmlint/internal/lintkit"
	"uagpnm/tools/gpnmlint/internal/lintkit/linttest"
	"uagpnm/tools/gpnmlint/passes/defensivecopy"
)

func TestDefensivecopy(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, td, []*lintkit.Analyzer{defensivecopy.Analyzer}, "./accessors")
}
