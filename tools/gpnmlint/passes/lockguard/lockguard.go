// Package lockguard flags blocking calls made while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held. A mutex
// held across an HTTP round trip, a channel operation or a worker-pool
// fan turns one slow shard into a stalled coordinator — the deadlock
// class the PR 8 read plane's lock/RPC interleavings made easy to
// reintroduce.
//
// The analysis is deliberately function-local: it interprets one
// function body's statement list, tracking the set of locks held at
// each point. Branch bodies are scanned with a copy of the held set;
// the state after a branch is the intersection of the non-terminating
// paths, so `mu.Unlock(); return` inside an if-arm neither leaks nor
// clears the fallthrough state. Function literals are separate
// functions: a fan inside a FuncLit blocks the pool goroutine, not the
// lock holder, and the literal's own body gets its own scan.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "lockguard",
	Doc: "no sync.Mutex/RWMutex acquired in a function may still be held " +
		"across a blocking call (shard.RPC/shard.Shard methods, net/http " +
		"clients, channel operations, workpool fans, time.Sleep, WaitGroup.Wait)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					newScan(pass).block(x.Body.List, held{})
				}
				return true // descend: nested FuncLits get their own scan
			case *ast.FuncLit:
				newScan(pass).block(x.Body.List, held{})
				return true
			}
			return true
		})
	}
	return nil
}

// held maps a lock's printed receiver expression ("r.mu") to where it
// was acquired.
type held map[string]token.Pos

func (h held) clone() held {
	c := held{}
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both states (earliest acquire pos).
func intersect(a, b held) held {
	out := held{}
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return out
}

type scan struct {
	pass *lintkit.Pass
	info *types.Info
	fset *token.FileSet
}

func newScan(pass *lintkit.Pass) *scan {
	return &scan{pass: pass, info: pass.Pkg.Info, fset: pass.Pkg.Fset}
}

// block interprets one statement list, mutating and returning the held
// set; the second result reports whether the list definitely terminates
// (ends in return, panic, or an unconditional branch).
func (s *scan) block(stmts []ast.Stmt, h held) (held, bool) {
	for _, st := range stmts {
		var term bool
		h, term = s.stmt(st, h)
		if term {
			return h, true
		}
	}
	return h, false
}

func (s *scan) stmt(st ast.Stmt, h held) (held, bool) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		s.expr(x.X, h)
		s.applyLockOps(x.X, h)
		if isPanicCall(s.info, x.X) {
			return h, true
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.expr(e, h)
		}
		for _, e := range x.Lhs {
			s.expr(e, h)
		}
		for _, e := range x.Rhs {
			s.applyLockOps(e, h)
		}
	case *ast.DeclStmt:
		s.expr(x.Decl, h)
	case *ast.SendStmt:
		s.expr(x.Chan, h)
		s.expr(x.Value, h)
		s.reportBlocking(x, "channel send", h)
	case *ast.IncDecStmt:
		s.expr(x.X, h)
	case *ast.DeferStmt:
		// A deferred unlock releases at return — the lock stays held
		// for the rest of the body, which is exactly what the held set
		// already says, so a defer contributes nothing here. Deferred
		// *locks* or blocking calls run after the body; skip them too.
	case *ast.GoStmt:
		// The spawned goroutine does not run under this function's
		// locks; its FuncLit body is scanned independently by run.
		for _, a := range x.Call.Args {
			s.expr(a, h)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.expr(e, h)
		}
		return h, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list.
		return h, true
	case *ast.BlockStmt:
		return s.block(x.List, h)
	case *ast.IfStmt:
		if x.Init != nil {
			h, _ = s.stmt(x.Init, h)
		}
		s.expr(x.Cond, h)
		thenOut, thenTerm := s.block(x.Body.List, h.clone())
		elseOut, elseTerm := h, false
		if x.Else != nil {
			elseOut, elseTerm = s.stmt(x.Else, h.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return h, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersect(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			h, _ = s.stmt(x.Init, h)
		}
		if x.Cond != nil {
			s.expr(x.Cond, h)
		}
		s.block(x.Body.List, h.clone())
		// The body may run zero times; keep the entry state.
	case *ast.RangeStmt:
		s.expr(x.X, h)
		s.block(x.Body.List, h.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			h, _ = s.stmt(x.Init, h)
		}
		if x.Tag != nil {
			s.expr(x.Tag, h)
		}
		for _, c := range x.Body.List {
			s.block(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			h, _ = s.stmt(x.Init, h)
		}
		for _, c := range x.Body.List {
			s.block(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.reportBlocking(x, "select without default", h)
		}
		for _, c := range x.Body.List {
			s.block(c.(*ast.CommClause).Body, h.clone())
		}
	case *ast.LabeledStmt:
		return s.stmt(x.Stmt, h)
	}
	return h, false
}

// applyLockOps updates h for Lock/RLock/Unlock/RUnlock calls appearing
// in e (outside nested function literals).
func (s *scan) applyLockOps(e ast.Node, h held) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := s.lockOp(call)
		if key == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			h[key] = call.Pos()
		case "Unlock", "RUnlock":
			delete(h, key)
		}
		return true
	})
}

// lockOp recognises a mutex method call and returns the lock's identity
// key (printed receiver expression) and the method name.
func (s *scan) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	recv := lintkit.ReceiverType(s.info, call)
	if !lintkit.NamedIs(recv, "sync", "Mutex") && !lintkit.NamedIs(recv, "sync", "RWMutex") {
		return "", ""
	}
	return exprString(s.fset, sel.X), sel.Sel.Name
}

// expr reports blocking operations inside e while h is non-empty,
// without descending into function literals.
func (s *scan) expr(e ast.Node, h held) {
	if len(h) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.reportBlocking(x, "channel receive", h)
			}
		case *ast.CallExpr:
			if what := s.blockingCall(x); what != "" {
				s.reportBlocking(x, what, h)
			}
		}
		return true
	})
}

// blockingCall classifies e as a blocking operation, returning a short
// description or "".
func (s *scan) blockingCall(call *ast.CallExpr) string {
	fn := lintkit.Callee(s.info, call)
	if fn == nil {
		return ""
	}
	recv := lintkit.ReceiverType(s.info, call)
	switch {
	case lintkit.NamedIs(recv, "internal/shard", "RPC"):
		return fmt.Sprintf("shard RPC %s", fn.Name())
	case lintkit.NamedIs(recv, "internal/shard", "Shard"):
		return fmt.Sprintf("shard.Shard.%s (may be a remote round trip)", fn.Name())
	case lintkit.NamedIs(recv, "net/http", "Client"):
		return fmt.Sprintf("http.Client.%s", fn.Name())
	case lintkit.NamedIs(recv, "sync", "WaitGroup") && fn.Name() == "Wait":
		return "WaitGroup.Wait"
	}
	if fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "net/http" && (fn.Name() == "Get" || fn.Name() == "Post" ||
			fn.Name() == "Head" || fn.Name() == "PostForm"):
			return "http." + fn.Name()
		case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
			return "time.Sleep"
		case (lintkit.FuncPkgSuffix(fn, "internal/workpool") || lintkit.FuncPkgSuffix(fn, "internal/partition")) &&
			(fn.Name() == "ForEach" || fn.Name() == "parallelFor"):
			return "worker-pool fan " + fn.Name()
		}
	}
	return ""
}

func (s *scan) reportBlocking(n ast.Node, what string, h held) {
	if len(h) == 0 {
		return
	}
	var locks []string
	for k, pos := range h {
		locks = append(locks, fmt.Sprintf("%s (acquired line %d)", k, s.fset.Position(pos).Line))
	}
	// Deterministic output for multi-lock states.
	for i := 0; i < len(locks); i++ {
		for j := i + 1; j < len(locks); j++ {
			if locks[j] < locks[i] {
				locks[i], locks[j] = locks[j], locks[i]
			}
		}
	}
	s.pass.Reportf(n, "%s while holding %s", what, strings.Join(locks, ", "))
}

func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && lintkit.IsBuiltin(info, call, "panic")
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, fset, e)
	return b.String()
}
