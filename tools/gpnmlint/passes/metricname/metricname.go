// Package metricname checks every name handed to
// obs.Registry.Counter/Gauge/Histogram: it must be a constant string
// matching ^gpnm_[a-z0-9_]+$ (a valid Prometheus 0.0.4 identifier with
// the project prefix), label keys must be constant snake_case
// identifiers, and — across the whole program — one name must never
// register as two different instrument types (the registry panics on
// that at runtime; the lint catches it at review time).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"uagpnm/tools/gpnmlint/internal/lintkit"
)

var (
	nameRe  = regexp.MustCompile(`^gpnm_[a-z0-9_]+$`)
	labelRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

var instruments = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

var Analyzer = &lintkit.Analyzer{
	Name: "metricname",
	Doc: "metric names passed to obs.Registry.{Counter,Gauge,Histogram} must be " +
		"constant strings matching ^gpnm_[a-z0-9_]+$ with snake_case label keys, " +
		"and one name must not register as two instrument types anywhere",
	Run:    run,
	Finish: finish,
}

func run(pass *lintkit.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.Callee(info, call)
			if fn == nil || !instruments[fn.Name()] || !lintkit.FuncPkgSuffix(fn, "internal/obs") {
				return true
			}
			if !lintkit.NamedIs(lintkit.ReceiverType(info, call), "internal/obs", "Registry") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			name, ok := constString(info, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0], "metric name must be a constant string literal, not a computed value")
				return true
			}
			if !nameRe.MatchString(name) {
				pass.Reportf(call.Args[0], "metric name %q must match ^gpnm_[a-z0-9_]+$", name)
			} else {
				pass.ExportFact(call.Args[0], name, fn.Name())
			}
			// Labels are key,value pairs; keys sit at odd argument
			// positions and must be constant identifiers. Values may be
			// dynamic.
			for i := 1; i < len(call.Args); i += 2 {
				key, ok := constString(info, call.Args[i])
				if !ok {
					pass.Reportf(call.Args[i], "metric label key must be a constant string")
					continue
				}
				if !labelRe.MatchString(key) {
					pass.Reportf(call.Args[i], "metric label key %q must match ^[a-z_][a-z0-9_]*$", key)
				}
			}
			return true
		})
	}
	return nil
}

// finish is the cross-package step: a metric name registered under two
// instrument types anywhere in the program is a runtime panic waiting
// in obs.Registry.get.
func finish(f *lintkit.Finish) error {
	type site struct {
		pos  token.Position
		kind string
	}
	byName := map[string][]site{}
	for _, fact := range f.Facts {
		byName[fact.Key] = append(byName[fact.Key], site{fact.Pos, fact.Value})
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sites := byName[n]
		kinds := map[string]bool{}
		for _, s := range sites {
			kinds[s.kind] = true
		}
		if len(kinds) < 2 {
			continue
		}
		list := make([]string, 0, len(kinds))
		for k := range kinds {
			list = append(list, k)
		}
		sort.Strings(list)
		for _, s := range sites {
			f.Report(s.pos, "metric %q registered as multiple instrument types (%s)", n, strings.Join(list, ", "))
		}
	}
	return nil
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
