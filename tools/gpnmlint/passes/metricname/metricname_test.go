package metricname_test

import (
	"path/filepath"
	"testing"

	"uagpnm/tools/gpnmlint/internal/lintkit"
	"uagpnm/tools/gpnmlint/internal/lintkit/linttest"
	"uagpnm/tools/gpnmlint/passes/metricname"
)

func TestMetricname(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	// Two packages so the finish step sees the cross-package kind
	// collision on gpnm_dup_total.
	linttest.Run(t, td, []*lintkit.Analyzer{metricname.Analyzer}, "./metrics/...")
}
