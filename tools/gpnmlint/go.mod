module uagpnm/tools/gpnmlint

go 1.24

// The analyzer suite is a nested module so the root module stays
// dependency-free. It would normally build on golang.org/x/tools
// (go/analysis + analysistest); internal/lintkit is a minimal
// offline-buildable stand-in with the same shape — Analyzer/Pass/
// Diagnostic, a go/types loader driven by `go list -export`, and a
// `// want`-comment fixture harness — so the suite builds with nothing
// but the standard library and the go command.
require uagpnm v0.0.0

replace uagpnm => ../..
