package uagpnm

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// serviceGraph builds the quickstart graph: 0:PM→1:SE, 2:PM isolated.
func serviceGraph() *Graph {
	g := NewGraph()
	g.AddNode("PM")
	g.AddNode("SE")
	g.AddNode("PM")
	g.AddEdge(0, 1)
	return g
}

func servicePattern(g *Graph) *Pattern {
	p := NewPattern(g)
	pm := p.AddNode("PM")
	se := p.AddNode("SE")
	p.AddEdge(pm, se, 2)
	return p
}

// TestServiceLocalAndRemote runs the identical scenario against both
// Service implementations — the in-process Hub and a Dial client over
// NewHandler — through the interface alone, asserting the same answers
// at every step. This is the acceptance pin for "one Service interface
// for local and remote hubs".
func TestServiceLocalAndRemote(t *testing.T) {
	ctx := context.Background()

	makeLocal := func(t *testing.T) Service {
		h, err := NewHub(serviceGraph(), HubOptions{Horizon: 3, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	makeRemote := func(t *testing.T) Service {
		h, err := NewHub(serviceGraph(), HubOptions{Horizon: 3, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewHandler(h, HandlerOptions{PollTimeout: 2 * time.Second}))
		t.Cleanup(ts.Close)
		c, err := Dial(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	for _, tc := range []struct {
		name string
		make func(t *testing.T) Service
	}{
		{"hub", makeLocal},
		{"dial", makeRemote},
	} {
		t.Run(tc.name, func(t *testing.T) {
			svc := tc.make(t)

			id, err := svc.Register(ctx, servicePattern(NewGraph()))
			if err != nil {
				t.Fatal(err)
			}
			if got, err := svc.Result(ctx, id, 0); err != nil || !got.Equal(NodeSet{0}) {
				t.Fatalf("initial result = %v (err %v), want {0}", got, err)
			}

			deltas, stats, err := svc.ApplyBatch(ctx, HubBatch{D: []Update{InsertEdge(2, 1)}})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Seq != 1 || len(deltas) != 1 || len(deltas[0].Nodes) != 1 ||
				!deltas[0].Nodes[0].Added.Equal(NodeSet{2}) {
				t.Fatalf("apply = %+v / %+v", deltas, stats)
			}

			p, m, seq, err := svc.Snapshot(ctx, id)
			if err != nil || seq != 1 {
				t.Fatalf("snapshot err %v seq %d", err, seq)
			}
			if p.NumNodes() != 2 || !m.Total() || !m.Nodes(0).Equal(NodeSet{0, 2}) {
				t.Fatalf("snapshot = %v nodes / total %v / %v", p.NumNodes(), m.Total(), m.Nodes(0))
			}

			ds, resync, err := svc.WaitDeltas(ctx, id, 0)
			if err != nil || resync || len(ds) != 1 || ds[0].Seq != 1 {
				t.Fatalf("WaitDeltas = %v resync=%v err=%v", ds, resync, err)
			}

			// ctx expiry unblocks an ahead-of-tip poll with ctx's error.
			short, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
			_, _, err = svc.WaitDeltas(short, id, 1)
			cancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("ahead-of-tip poll err = %v, want deadline", err)
			}

			if err := svc.Unregister(ctx, id); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Result(ctx, id, 0); !errors.Is(err, ErrUnknownPattern) {
				t.Fatalf("result after unregister = %v, want ErrUnknownPattern", err)
			}
			if _, _, _, err := svc.Snapshot(ctx, id); !errors.Is(err, ErrUnknownPattern) {
				t.Fatalf("snapshot after unregister = %v, want ErrUnknownPattern", err)
			}
			if _, _, err := svc.WaitDeltas(ctx, id, 0); !errors.Is(err, ErrUnknownPattern) {
				t.Fatalf("poll after unregister = %v, want ErrUnknownPattern", err)
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDialRefusesDeadServer: Dial verifies liveness up front.
func TestDialRefusesDeadServer(t *testing.T) {
	ts := httptest.NewServer(nil)
	addr := ts.URL
	ts.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial against a dead server must error")
	}
}
