// Package uagpnm is a Go implementation of Updates-Aware Graph Pattern
// based Node Matching (UA-GPNM) — Sun, Liu, Wang, Zhou, ICDE 2020 —
// together with every substrate the paper builds on: a dynamic labelled
// data graph, pattern graphs with bounded path lengths, incremental
// all-pairs shortest-path-length (SLen) maintenance, bounded graph
// simulation matching, elimination-relationship detection (DER-I/II/III),
// the EH-Tree index, the label-based graph partition, and the paper's
// baselines (INC-GPNM, EH-GPNM) for comparison.
//
// # Quick start
//
//	g := uagpnm.NewGraph()
//	alice := g.AddNode("PM")
//	bob := g.AddNode("SE")
//	g.AddEdge(alice, bob)
//
//	p := uagpnm.NewPattern(g)
//	pm := p.AddNode("PM")
//	se := p.AddNode("SE")
//	p.AddEdge(pm, se, 3) // a PM within 3 hops of an SE
//
//	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNM})
//	fmt.Println(s.Result(pm)) // matching data nodes for the PM role
//
//	// Later: process a batch of updates without recomputing.
//	batch := uagpnm.Batch{D: []uagpnm.Update{uagpnm.InsertEdge(bob, alice)}}
//	s.SQuery(batch)
//
// Sessions answer the initial query on construction (the paper's IQuery)
// and process update batches incrementally (SQuery), using the method
// selected in Options. All five methods produce identical results; they
// differ in how much work a batch costs. See README.md for the
// architecture and EXPERIMENTS.md for the reproduction results.
package uagpnm

import (
	"context"
	"io"
	"net/http"
	"time"

	"uagpnm/internal/api"
	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// Graph is a directed data graph with labelled nodes (GD in the paper).
type Graph = graph.Graph

// Pattern is a pattern graph with bounded path lengths (GP).
type Pattern = pattern.Graph

// Bound is a pattern edge's bounded path length: a positive hop count or
// Star.
type Bound = pattern.Bound

// Star is the "*" bound: any finite path length matches.
const Star = pattern.Star

// NodeID identifies a data-graph node.
type NodeID = graph.NodeID

// PatternNodeID identifies a pattern node.
type PatternNodeID = pattern.NodeID

// NodeSet is a sorted set of data-graph node ids.
type NodeSet = nodeset.Set

// Match is a matching result: the simulation image per pattern node.
type Match = simulation.Match

// Update is one update to either graph; Batch is one query's worth.
type (
	Update = updates.Update
	Batch  = updates.Batch
)

// Method selects the query-processing algorithm of a Session.
type Method = core.Method

// The five methods of the paper's evaluation.
const (
	// Scratch recomputes everything per batch (the naive baseline).
	Scratch = core.Scratch
	// INCGPNM is the incremental baseline [13]: one pass per update.
	INCGPNM = core.INCGPNM
	// EHGPNM adds Type II elimination over data updates [14].
	EHGPNM = core.EHGPNM
	// UAGPNMNoPar is UA-GPNM without the label partition (ablation).
	UAGPNMNoPar = core.UAGPNMNoPar
	// UAGPNM is the paper's algorithm: full elimination detection,
	// EH-Tree, one amendment pass, label-partitioned SLen.
	UAGPNM = core.UAGPNM
)

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return graph.New(nil) }

// LoadGraph parses a SNAP-style edge list ("from<TAB>to" lines, '#'
// comments); every node receives defaultLabel. Use Graph.ApplyLabels to
// attach a label file afterwards.
func LoadGraph(r io.Reader, defaultLabel string) (*Graph, error) {
	g, _, err := graph.ReadEdgeList(r, nil, defaultLabel)
	return g, err
}

// LoadGraphWithIDs is LoadGraph plus the file-id → graph-id mapping.
// Edge-list node ids are remapped densely in order of first appearance,
// so a label file keyed by the original file ids must be applied through
// the map (Graph.ApplyLabelsMapped) rather than Graph.ApplyLabels.
func LoadGraphWithIDs(r io.Reader, defaultLabel string) (*Graph, map[int64]NodeID, error) {
	return graph.ReadEdgeList(r, nil, defaultLabel)
}

// NewPattern returns an empty pattern sharing g's label table (labels
// must be shared for matching to align).
func NewPattern(g *Graph) *Pattern { return pattern.New(g.Labels()) }

// ParsePattern reads the textual pattern format ("node <name> <label>" /
// "edge <from> <to> <bound>" lines) against g's label table.
func ParsePattern(r io.Reader, g *Graph) (*Pattern, error) {
	return pattern.Parse(r, g.Labels())
}

// Options configures a Session.
type Options struct {
	// Method selects the algorithm (default UAGPNM).
	Method Method
	// Horizon caps SLen at this many hops; 0 keeps exact distances
	// (suitable for small graphs and patterns with "*" bounds). It is
	// raised automatically to the pattern's largest finite bound.
	Horizon int
	// Workers bounds the SLen substrate's internal worker pool. With
	// Method UAGPNM the partition engine fans per-partition builds,
	// overlay maintenance and batch affected-set computation across up
	// to Workers goroutines (0 = all cores); 1 runs fully serial, which
	// is how the baselines — UA-GPNM-NoPar included — are compared.
	Workers int
	// Shards, when non-empty, serves the UAGPNM partition engine's
	// per-partition intra SLen state from remote gpnm-shard workers at
	// these host:port addresses; the session process remains the
	// coordinator (bridge overlay, stitching, caches). Empty = fully
	// in-process.
	Shards []string
}

// Session is an evolving GPNM query over one graph and pattern. The
// session owns both after construction; it answers the initial query
// immediately and processes update batches incrementally.
type Session struct {
	inner *core.Session
}

// NewSession builds the SLen substrate for g, runs the initial query of
// p (IQuery), and returns the live session.
func NewSession(g *Graph, p *Pattern, opts Options) *Session {
	return &Session{inner: core.NewSession(g, p, core.Config{
		Method:     opts.Method,
		Horizon:    opts.Horizon,
		Workers:    opts.Workers,
		ShardAddrs: opts.Shards,
	})}
}

// SQuery processes one update batch and returns the new match. The
// returned match is a defensive deep copy — the caller's to keep,
// mutate or compare, frozen at this query's result no matter how many
// further batches the session processes.
func (s *Session) SQuery(b Batch) *Match { return s.inner.SQuery(b).Clone(s.inner.P) }

// Result returns the node matching result Npi for pattern node u; empty
// unless every pattern node has a match (BGS semantics). The set is
// freshly materialised on every call and never aliases session state —
// callers may sort, slice or overwrite it freely.
func (s *Session) Result(u PatternNodeID) NodeSet { return s.inner.Result(u) }

// Matches returns a defensive deep copy of the full current match (see
// SQuery).
func (s *Session) Matches() *Match { return s.inner.Match.Clone(s.inner.P) }

// Graph returns the session's (evolving) data graph.
func (s *Session) Graph() *Graph { return s.inner.G }

// Pattern returns the session's (evolving) pattern graph.
func (s *Session) Pattern() *Pattern { return s.inner.P }

// Stats reports the work of the last SQuery: amendment passes, EH-Tree
// size and roots, eliminated updates, seed size, duration.
func (s *Session) Stats() core.QueryStats { return s.inner.Stats }

// Fork returns an independent copy of the session (deep copies of graph,
// pattern, substrate and match).
func (s *Session) Fork() *Session { return &Session{inner: s.inner.Fork()} }

// Close releases the session's substrate shards (remote gpnm-shard
// clients drop their caches and idle connections). Only needed when
// Options.Shards was set; harmless otherwise.
func (s *Session) Close() error { return s.inner.Close() }

// Update constructors — data graph side.

// InsertEdge inserts data edge u→v.
func InsertEdge(u, v NodeID) Update {
	return Update{Kind: updates.DataEdgeInsert, From: u, To: v}
}

// DeleteEdge deletes data edge u→v.
func DeleteEdge(u, v NodeID) Update {
	return Update{Kind: updates.DataEdgeDelete, From: u, To: v}
}

// InsertNode inserts a data node with the given labels. id must be the
// id the graph will assign (Graph.NumIDs() at application time, offset
// by earlier inserts in the same batch).
func InsertNode(id NodeID, labels ...string) Update {
	return Update{Kind: updates.DataNodeInsert, Node: id, Labels: labels}
}

// DeleteNode deletes data node id with its incident edges.
func DeleteNode(id NodeID) Update {
	return Update{Kind: updates.DataNodeDelete, Node: id}
}

// Update constructors — pattern side.

// InsertPatternEdge inserts pattern edge u→v with bound b.
func InsertPatternEdge(u, v PatternNodeID, b Bound) Update {
	return Update{Kind: updates.PatternEdgeInsert, From: u, To: v, Bound: b}
}

// DeletePatternEdge deletes pattern edge u→v.
func DeletePatternEdge(u, v PatternNodeID) Update {
	return Update{Kind: updates.PatternEdgeDelete, From: u, To: v}
}

// InsertPatternNode inserts a pattern node with the given label (id as
// for InsertNode, against the pattern's id sequence).
func InsertPatternNode(id PatternNodeID, label string) Update {
	return Update{Kind: updates.PatternNodeInsert, Node: id, Labels: []string{label}}
}

// DeletePatternNode deletes pattern node id with its incident edges.
func DeletePatternNode(id PatternNodeID) Update {
	return Update{Kind: updates.PatternNodeDelete, Node: id}
}

// GenerateBatch builds a random, replayable update batch consistent with
// g and p: pTotal pattern updates and dTotal data updates balanced
// across the four kinds on each side (the experiment protocol §VII-A).
func GenerateBatch(seed int64, pTotal, dTotal int, g *Graph, p *Pattern) Batch {
	return updates.Generate(updates.Balanced(seed, pTotal, dTotal), g, p)
}

// ApplyDataUpdates applies a batch's data-side updates structurally to
// g — graph mutation only, no substrate maintenance. A driver feeding a
// remote hub through the client SDK uses it to keep a local graph
// mirror consistent for generating the next batch (the hub applies the
// same updates to its own graph inside ApplyBatch).
func ApplyDataUpdates(g *Graph, ds []Update) { updates.ApplyDataStructural(ds, g) }

// SocialGraphConfig parameterises the synthetic social graph generator.
type SocialGraphConfig = datasets.SocialConfig

// GenerateSocialGraph builds a synthetic label-homophilous social graph
// with heavy-tailed degrees — the stand-in for the paper's SNAP datasets.
func GenerateSocialGraph(cfg SocialGraphConfig) *Graph {
	return datasets.GenerateSocial(cfg)
}

// Standing-query serving — one Service interface for local and remote
// hubs.

// Service is the serving surface of a standing-query hub: register
// patterns, apply update batches, read results, subscribe to deltas.
// Two implementations exist and answer identically batch for batch
// (the differential suite pins it):
//
//   - *Hub — the in-process hub: NewHub(g, opts).
//   - *Client — a remote hub over the versioned HTTP/JSON protocol:
//     Dial(addr) against a gpnm-serve process (or any handler from
//     NewHandler).
//
// Every method is context-aware and error-returning. The in-process
// implementation runs synchronously and consults ctx only where it
// blocks (WaitDeltas); the remote one honours ctx on every round trip.
// Operational failure surfaces as errors, never panics: a hub whose
// sharded distance substrate died returns ErrSubstrateLost (check with
// errors.Is) from every method until the process is rebuilt.
type Service interface {
	// Register adds p as a standing query, answers its initial query,
	// and returns its id.
	Register(ctx context.Context, p *Pattern) (PatternID, error)
	// Unregister removes a standing query (ErrUnknownPattern if absent).
	Unregister(ctx context.Context, id PatternID) error
	// ApplyBatch processes one update batch for every standing query,
	// returning one delta per pattern in registration order plus the
	// batch's shared-work stats.
	ApplyBatch(ctx context.Context, b HubBatch) ([]HubDelta, HubBatchStats, error)
	// Result returns the node matching result Npi for pattern node u of
	// standing query id (empty unless the match is total).
	Result(ctx context.Context, id PatternID, u PatternNodeID) (NodeSet, error)
	// Snapshot returns a mutually consistent (pattern, match, sequence)
	// view of one standing query.
	Snapshot(ctx context.Context, id PatternID) (*Pattern, *Match, uint64, error)
	// WaitDeltas long-polls for deltas with Seq > since; resync reports
	// the subscriber fell behind the retained history.
	WaitDeltas(ctx context.Context, id PatternID, since uint64) (ds []HubDelta, resync bool, err error)
	// Close releases the service's resources (remote connections,
	// substrate shards). The service is unusable afterwards.
	Close() error
}

// ErrSubstrateLost reports that a hub's sharded distance substrate
// died (a gpnm-shard worker became unreachable or diverged) beyond
// repair — failover found no surviving or spare worker, or the
// configured retry budget was spent: results can no longer be trusted,
// every Service call fails with this error, and the serving process
// should drain and rebuild. Detect it with errors.Is; the causing
// shard transport error stays wrapped inside.
var ErrSubstrateLost = shard.ErrSubstrateLost

// ErrSubstrateRecovering reports the transient sibling of
// ErrSubstrateLost on the remote client: the server refused a mutating
// request because it is mid-failover — rebuilding a lost shard
// worker's partitions inside an in-flight batch — and the request
// would only have queued behind the repair. Retry after a short delay
// and it will be served normally. Detect it with errors.Is; the
// in-process Hub never returns it (its calls just wait out the
// repair).
var ErrSubstrateRecovering = api.ErrSubstrateRecovering

// PatternID identifies a pattern registered with a Hub.
type PatternID = hub.PatternID

// HubBatch is one epoch's worth of updates for a whole Hub: a shared
// data-side sequence plus optional per-pattern ΔGP sequences.
type HubBatch = hub.Batch

// HubDelta is the change of one registered pattern's result after one
// batch: Added/Removed per pattern node, tagged with the hub sequence
// number (see Hub.ApplyBatch and Hub.WaitDeltas).
type HubDelta = hub.Delta

// NodeDelta is one pattern node's Added/Removed sets within a HubDelta.
type NodeDelta = simulation.NodeDelta

// HubBatchStats records the shared (once-per-batch) work of the last
// Hub.ApplyBatch — the SLen synchronisation n independent sessions
// would each repeat.
type HubBatchStats = hub.BatchStats

// ErrUnknownPattern reports a Hub pattern id that is not (or no longer)
// registered.
var ErrUnknownPattern = hub.ErrUnknownPattern

// Telemetry — the observability plane of internal/obs, re-exported so
// embedders can read (and the bench harness isolate) the metrics a hub
// or sharded substrate reports. See README.md's Observability section.

// MetricsRegistry is a zero-dependency metrics registry: atomic
// counters, gauges, fixed-bucket latency histograms, and a bounded ring
// of per-batch phase traces. Serve one over HTTP (it implements
// http.Handler with the Prometheus text exposition) or read it
// programmatically.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry, for callers that want a
// hub's telemetry isolated from the process-global default.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// BatchTrace is the phase breakdown of one hub batch: every
// instrumented span the batch crossed (substrate phases, recovery
// spans, hub phases), in completion order.
type BatchTrace = obs.Trace

// TraceSpan is one timed phase inside a BatchTrace.
type TraceSpan = obs.Span

// HubOptions configures a Hub.
type HubOptions struct {
	// Method selects the shared substrate (default UAGPNM, the
	// label-partitioned engine; any other method selects the global SLen
	// matrix). Every registered pattern is processed with the fused
	// UA-GPNM pipeline regardless.
	Method Method
	// Horizon caps SLen at this many hops (0 = exact); it is widened
	// automatically to cover every registered pattern's largest finite
	// bound.
	Horizon int
	// Workers bounds the substrate pool and the per-pattern fan-out
	// (0 = all cores, 1 = fully serial).
	Workers int
	// Shards, when non-empty, serves the partition engine's intra SLen
	// state from remote gpnm-shard workers at these host:port
	// addresses (see Options.Shards); the hub process remains the
	// coordinator.
	Shards []string
	// SpareShards are standby gpnm-shard workers promoted when a
	// serving worker is lost: the dead shard's partitions are rebuilt
	// on the spare from the hub's own mirrors and the in-flight batch
	// retries, invisibly to registered patterns except for
	// HubBatchStats.Recovered. Without spares, surviving workers absorb
	// the lost partitions instead.
	SpareShards []string
	// FailoverRetries bounds how many distinct shard losses each
	// protected engine operation (a batch's substrate phases, a
	// detection/amendment fan, a register's initial query) may absorb
	// through failover before the hub gives up and poisons itself with
	// ErrSubstrateLost (0 = the default of 1 per operation; negative =
	// disable failover: every loss poisons immediately).
	FailoverRetries int
	// OpChunk sets the sharded substrate's op-stream chunk size: a
	// batch's structural ops flush to the shard workers in epoch-fenced
	// chunks of this many ops, in the background, while the hub is still
	// staging the rest of the batch (0 = the engine default; negative =
	// no streaming, one end-of-phase flush). Only meaningful with
	// Shards.
	OpChunk int
	// Pipeline opts the hub into the asynchronous batch pipeline:
	// ApplyBatch calls queue, and each queued batch's pre-state deletion
	// balls are computed while its predecessor is still amending
	// patterns — identical results (previews are validated against a
	// write generation and discarded when stale), lower latency when
	// batches arrive back-to-back. Callers still see the synchronous
	// ApplyBatch signature; only the internal phase scheduling changes.
	Pipeline bool
	// HealthSweep, when positive, runs a background probe of the shard
	// fleet at this interval while the hub is idle, repairing workers
	// that died between batches off the critical path (the next batch
	// meets an already-healthy fleet instead of paying for discovery and
	// rebuild itself). Only meaningful with Shards. Close stops it.
	HealthSweep time.Duration
	// History bounds the per-pattern delta log retained for long-polling
	// (default 256).
	History int
	// DisableIndex turns off the pattern-set discrimination index, so
	// every batch fans the incremental pass over every registration
	// instead of only the ones whose label/radius signature the batch
	// can reach. The indexed and unindexed hubs produce identical
	// results (the index may over-approximate, never under-approximate);
	// the switch exists for measurement and as an escape hatch.
	DisableIndex bool
	// Metrics, when non-nil, receives the hub's telemetry (batch phase
	// histograms, per-batch traces, shard RPC latencies) instead of the
	// process-global registry. Leave nil unless the telemetry must be
	// isolated — e.g. several hubs in one process, or a benchmark
	// attributing phases to one run.
	Metrics *MetricsRegistry
}

// Hub hosts many registered patterns as standing queries over one data
// graph and one shared SLen substrate: each update batch pays the
// substrate synchronisation once, then amends every pattern's result in
// parallel. Unlike Session, a Hub is safe for concurrent use; it is the
// in-process Service implementation (Dial returns the remote one). See
// internal/hub for the phase/epoch discipline.
//
// Hub methods run synchronously under the hub's internal locking and do
// not abort mid-batch on context cancellation (a half-applied batch
// would corrupt the substrate); ctx is consulted where the hub blocks —
// WaitDeltas — matching the Service contract.
type Hub struct {
	inner     *hub.Hub
	stopSweep func() // nil unless HubOptions.HealthSweep was set
}

var _ Service = (*Hub)(nil)

// NewHub builds the shared substrate for g and returns an empty hub.
// The hub owns g afterwards. With HubOptions.Shards set the build talks
// to remote workers and can fail with ErrSubstrateLost; an in-process
// build never errors.
func NewHub(g *Graph, opts HubOptions) (*Hub, error) {
	inner, err := hub.New(g, hub.Config{
		Method:          opts.Method,
		Horizon:         opts.Horizon,
		Workers:         opts.Workers,
		Shards:          opts.Shards,
		SpareShards:     opts.SpareShards,
		FailoverRetries: opts.FailoverRetries,
		OpChunk:         opts.OpChunk,
		Pipeline:        opts.Pipeline,
		History:         opts.History,
		DisableIndex:    opts.DisableIndex,
		Metrics:         opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	h := &Hub{inner: inner}
	if opts.HealthSweep > 0 {
		h.stopSweep = inner.StartHealthSweep(opts.HealthSweep)
	}
	return h, nil
}

// Register adds p as a standing query, answers its initial query, and
// returns its id. The hub owns p afterwards. Build p before using the
// hub concurrently (its construction interns labels into the shared
// table); front ends registering patterns while batches fly should use
// RegisterScript, which parses under the hub's lock.
func (h *Hub) Register(ctx context.Context, p *Pattern) (PatternID, error) {
	return h.inner.Register(p)
}

// RegisterScript parses a pattern in the textual format against the hub
// graph's label table — atomically with respect to concurrent batches —
// and registers it.
func (h *Hub) RegisterScript(r io.Reader) (PatternID, error) { return h.inner.RegisterScript(r) }

// Unregister removes a standing query; ErrUnknownPattern if id is not
// (or no longer) registered, ErrSubstrateLost on a poisoned hub.
func (h *Hub) Unregister(ctx context.Context, id PatternID) error {
	return h.inner.UnregisterErr(id)
}

// Patterns lists the registered ids in registration order.
func (h *Hub) Patterns() []PatternID { return h.inner.Patterns() }

// ApplyBatch processes one update batch for every standing query — the
// shared SLen work once, the per-pattern amendments fanned in parallel —
// and returns one delta per pattern in registration order, plus this
// batch's own shared-work stats (use these rather than LastBatch when
// other goroutines may be applying batches concurrently).
func (h *Hub) ApplyBatch(ctx context.Context, b HubBatch) ([]HubDelta, HubBatchStats, error) {
	return h.inner.ApplyBatch(b)
}

// Result returns the node matching result Npi of pattern node u within
// standing query id (freshly materialised; empty unless the pattern's
// match is total). ErrUnknownPattern if id is not registered.
func (h *Hub) Result(ctx context.Context, id PatternID, u PatternNodeID) (NodeSet, error) {
	return h.inner.ResultErr(id, u)
}

// Match returns a defensive deep copy of standing query id's current
// match.
func (h *Hub) Match(id PatternID) (*Match, bool) { return h.inner.Match(id) }

// PatternGraph returns a defensive clone of standing query id's current
// pattern graph.
func (h *Hub) PatternGraph(id PatternID) (*Pattern, bool) { return h.inner.PatternGraph(id) }

// Snapshot returns a mutually consistent (pattern, match, sequence)
// view of one standing query, taken under a single hub lock
// acquisition; both graphs are defensive clones. ErrUnknownPattern if
// id is not registered.
func (h *Hub) Snapshot(ctx context.Context, id PatternID) (*Pattern, *Match, uint64, error) {
	return h.inner.Snapshot(id)
}

// GraphStats summarises the hub's data graph race-free (Graph() itself
// must not be read concurrently with ApplyBatch).
func (h *Hub) GraphStats() graph.Stats { return h.inner.GraphStats() }

// Seq returns the hub's batch sequence number (0 before any batch).
func (h *Hub) Seq() uint64 { return h.inner.Seq() }

// Graph returns the hub's (evolving) data graph; treat it as read-only
// while the hub is live.
func (h *Hub) Graph() *Graph { return h.inner.Graph() }

// LastBatch reports the shared work of the most recent ApplyBatch.
func (h *Hub) LastBatch() HubBatchStats { return h.inner.LastBatch() }

// Close releases the hub's substrate shards (remote gpnm-shard clients
// drop their caches and idle connections). Call once the hub is done
// serving.
func (h *Hub) Close() error {
	if h.stopSweep != nil {
		h.stopSweep()
	}
	return h.inner.Close()
}

// Err reports the hub's sticky ErrSubstrateLost (nil while healthy) —
// what a serving process checks after its drain to decide whether to
// exit for a supervisor restart.
func (h *Hub) Err() error { return h.inner.Err() }

// Status reports the sharded substrate's failover state without
// blocking on in-flight batches: recovering is true while a lost shard
// worker's partitions are being rebuilt on survivors or spares
// (degraded, not dead), recovered counts the losses absorbed over the
// hub's lifetime. Both are zero for in-process substrates.
func (h *Hub) Status() (recovering bool, recovered uint64) { return h.inner.Status() }

// Stats reports the per-pattern pass statistics of id's last amendment.
func (h *Hub) Stats(id PatternID) (core.QueryStats, bool) { return h.inner.PatternStats(id) }

// Metrics returns the hub's telemetry registry (HubOptions.Metrics, or
// the process-global default): phase histograms, wake counters, and —
// for sharded substrates — per-endpoint RPC latency and byte counters.
func (h *Hub) Metrics() *MetricsRegistry { return h.inner.Metrics() }

// LastTrace returns the phase trace of the most recent batch (ok=false
// before the first batch): one TraceSpan per instrumented phase the
// batch crossed, in completion order.
func (h *Hub) LastTrace() (BatchTrace, bool) { return h.inner.Metrics().LastTrace() }

// WaitDeltas long-polls standing query id for deltas with Seq > since:
// it blocks until one exists (returning all retained ones in order),
// ctx expires, or the pattern is unregistered. resync = true means the
// subscriber is further behind than the delta history reaches and must
// refetch the full result.
func (h *Hub) WaitDeltas(ctx context.Context, id PatternID, since uint64) (ds []HubDelta, resync bool, err error) {
	return h.inner.WaitDeltas(ctx, id, since)
}

// Remote client — the Service implementation over the wire.

// Client is a remote hub: the same Service surface as *Hub, served by
// a gpnm-serve process (or any NewHandler handler) over the versioned
// HTTP/JSON protocol. Results equal the in-process hub's batch for
// batch. Safe for concurrent use.
//
// Differences from *Hub worth knowing: Register leaves ownership of
// the pattern with the caller (it travels by value over the wire), and
// Snapshot's returned pattern is rebuilt against a client-local label
// table — names, bounds and node ids are preserved, label ids are not
// comparable across processes.
type Client struct {
	inner *api.Client
}

var _ Service = (*Client)(nil)

// Dial connects to the hub server at addr ("host:port" or a full
// http:// URL), verifying it is alive and healthy. A server that has
// lost its substrate refuses the dial.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial under a caller-controlled context.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	c, err := api.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Client{inner: c}, nil
}

// Addr returns the server's base URL.
func (c *Client) Addr() string { return c.inner.Addr() }

// Register registers p as a standing query on the remote hub and
// returns its id. The caller keeps p.
func (c *Client) Register(ctx context.Context, p *Pattern) (PatternID, error) {
	return c.inner.Register(ctx, p)
}

// Unregister removes a standing query; ErrUnknownPattern if absent.
func (c *Client) Unregister(ctx context.Context, id PatternID) error {
	return c.inner.Unregister(ctx, id)
}

// ApplyBatch applies one update batch on the remote hub. Transport
// errors are returned without retry — the batch may have applied before
// the response was lost, and re-sending would double-mutate the graph;
// resynchronise via Snapshot instead.
func (c *Client) ApplyBatch(ctx context.Context, b HubBatch) ([]HubDelta, HubBatchStats, error) {
	return c.inner.ApplyBatch(ctx, b)
}

// Result returns the node matching result Npi of pattern node u within
// standing query id.
func (c *Client) Result(ctx context.Context, id PatternID, u PatternNodeID) (NodeSet, error) {
	return c.inner.Result(ctx, id, u)
}

// Snapshot returns a mutually consistent (pattern, match, sequence)
// view of one standing query, rebuilt from one wire round trip.
func (c *Client) Snapshot(ctx context.Context, id PatternID) (*Pattern, *Match, uint64, error) {
	return c.inner.Snapshot(ctx, id)
}

// WaitDeltas long-polls the remote hub for deltas with Seq > since (as
// repeated bounded server polls, so it survives request-duration caps
// on the path). It blocks until a delta exists, ctx expires, or the
// query is unregistered.
func (c *Client) WaitDeltas(ctx context.Context, id PatternID, since uint64) (ds []HubDelta, resync bool, err error) {
	return c.inner.WaitDeltas(ctx, id, since)
}

// Stats returns the per-pattern pass statistics of standing query id's
// last amendment on the remote hub (GET /v1/patterns/{id}/stats).
func (c *Client) Stats(ctx context.Context, id PatternID) (core.QueryStats, error) {
	return c.inner.Stats(ctx, id)
}

// LastTrace returns the phase trace of the remote hub's most recent
// batch (GET /v1/trace; ok=false before the first batch).
func (c *Client) LastTrace(ctx context.Context) (BatchTrace, bool, error) {
	return c.inner.LastTrace(ctx)
}

// Traces returns the remote hub's retained per-batch phase traces,
// oldest first; n > 0 caps the result to the most recent n.
func (c *Client) Traces(ctx context.Context, n int) ([]BatchTrace, error) {
	return c.inner.Traces(ctx, n)
}

// Close releases the client's idle connections; the server and its
// registered patterns are unaffected.
func (c *Client) Close() error { return c.inner.Close() }

// HandlerOptions parameterises NewHandler.
type HandlerOptions struct {
	// PollTimeout caps the delta long-poll wait (0 = 30s).
	PollTimeout time.Duration
	// OnSubstrateLoss, when set, is called exactly once the first time
	// the hub reports ErrSubstrateLost — the hook a server uses to start
	// draining (gpnm-serve wires it to its graceful-shutdown path).
	OnSubstrateLoss func(error)
}

// NewHandler mounts h behind the versioned HTTP/JSON protocol —
// exactly what gpnm-serve serves and Dial speaks — so any program can
// embed a hub server in its own mux. See README.md for the /v1
// endpoint table.
func NewHandler(h *Hub, opts HandlerOptions) http.Handler {
	return api.NewServer(h.inner, api.ServerConfig{
		PollTimeout:     opts.PollTimeout,
		OnSubstrateLoss: opts.OnSubstrateLoss,
	}).Routes()
}

// PatternConfig parameterises random pattern generation.
type PatternConfig = patgen.Config

// GeneratePattern builds a random weakly-connected pattern whose labels
// come from g (the socnetv stand-in of §VII-A).
func GeneratePattern(cfg PatternConfig, g *Graph) *Pattern {
	if len(cfg.Labels) == 0 {
		cfg.Labels = patgen.LabelsOf(g)
	}
	return patgen.Generate(cfg, g.Labels())
}
